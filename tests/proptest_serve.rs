//! Property tests of the hand-rolled HTTP request parser in
//! `llmpilot-serve`: whatever bytes arrive — arbitrary garbage, truncated
//! requests, oversized lines — the parser must never panic, must respect
//! its configured [`Limits`], and must round-trip well-formed requests.

use std::io::Cursor;

use proptest::prelude::*;

use llm_pilot::serve::http::percent_decode;
use llm_pilot::serve::{parse_request, Limits, ParseError, Request};

fn parse(bytes: &[u8], limits: &Limits) -> Result<Option<Request>, ParseError> {
    parse_request(&mut Cursor::new(bytes.to_vec()), limits)
}

fn small_limits() -> Limits {
    Limits { max_line_bytes: 256, max_headers: 8, max_body_bytes: 512 }
}

/// Serialize a structured request description into raw HTTP/1.1 bytes.
fn render_request(
    method: &str,
    segments: &[String],
    params: &[(String, String)],
    headers: &[(String, String)],
    body: &[u8],
) -> Vec<u8> {
    let mut target = String::new();
    for s in segments {
        target.push('/');
        target.push_str(s);
    }
    if target.is_empty() {
        target.push('/');
    }
    if !params.is_empty() {
        target.push('?');
        let encoded: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        target.push_str(&encoded.join("&"));
    }
    let mut out = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
    for (name, value) in headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if !body.is_empty() {
        out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// URL-safe token characters for generated path segments and query keys.
fn token_chars() -> Vec<char> {
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~".chars().collect()
}

fn token(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(token_chars()), len)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    /// Arbitrary bytes never panic the parser, and anything it does accept
    /// stays within the configured limits.
    #[test]
    fn arbitrary_bytes_never_panic_and_respect_limits(
        bytes in prop::collection::vec(0u8..=255u8, 0..2048)
    ) {
        let limits = small_limits();
        match parse(&bytes, &limits) {
            Ok(None) => prop_assert!(bytes.is_empty() || bytes.iter().all(|&b| b != b'\n')),
            Ok(Some(req)) => {
                prop_assert!(!req.method.is_empty());
                prop_assert!(req.method.len() <= limits.max_line_bytes);
                prop_assert!(req.path.starts_with('/'));
                prop_assert!(req.path.len() <= limits.max_line_bytes);
                prop_assert!(req.headers.len() <= limits.max_headers);
                prop_assert!(req.body.len() <= limits.max_body_bytes);
            }
            Err(e) => {
                // Every error maps to a defined close-or-respond action.
                let status = e.status();
                prop_assert!(
                    status == 0 || (400..=599).contains(&status),
                    "unexpected status {status} for {e:?}"
                );
            }
        }
    }

    /// Well-formed requests round-trip: method, path, query parameters
    /// (including percent escapes) and body all survive parsing.
    #[test]
    fn well_formed_requests_round_trip(
        method in prop::sample::select(vec!["GET", "POST", "PUT", "DELETE"]),
        segments in prop::collection::vec(token(1..12), 0..4),
        params in prop::collection::vec((token(1..8), token(0..12)), 0..5),
        body in prop::collection::vec(0u8..=255u8, 0..128)
    ) {
        let bytes = render_request(
            method,
            &segments,
            &params,
            &[("Host".into(), "llmpilot".into())],
            &body,
        );
        let req = parse(&bytes, &Limits::default())
            .expect("well-formed request must parse")
            .expect("well-formed request is not EOF");
        prop_assert_eq!(&req.method, method);
        let expected_path = if segments.is_empty() {
            "/".to_string()
        } else {
            segments.iter().map(|s| format!("/{s}")).collect()
        };
        prop_assert_eq!(&req.path, &expected_path);
        prop_assert_eq!(req.query.len(), params.len());
        for ((k, v), (pk, pv)) in params.iter().zip(&req.query) {
            // Token characters are their own percent-decoding.
            prop_assert_eq!(&percent_decode(k), pk);
            prop_assert_eq!(&percent_decode(v), pv);
        }
        prop_assert_eq!(&req.body, &body);
        prop_assert_eq!(req.header("host"), Some("llmpilot"));
    }

    /// Any strict prefix of a valid request is rejected as an error (or,
    /// for the empty prefix, reported as clean EOF) — never misparsed as
    /// a complete request.
    #[test]
    fn prefixes_of_valid_requests_never_parse(
        segments in prop::collection::vec(token(1..10), 0..3),
        params in prop::collection::vec((token(1..6), token(0..8)), 0..3),
        body in prop::collection::vec(0u8..=255u8, 0..64),
        cut_frac in 0.0f64..1.0
    ) {
        let bytes = render_request("GET", &segments, &params, &[], &body);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len()); // strict prefix only
        let limits = Limits::default();
        match parse(&bytes[..cut], &limits) {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty prefix is clean EOF"),
            Ok(Some(req)) => prop_assert!(
                false,
                "prefix of length {cut}/{} parsed as {req:?}",
                bytes.len()
            ),
            Err(_) => {}
        }
        // The uncut request still parses, so the generator is honest.
        prop_assert!(parse(&bytes, &limits).unwrap().is_some());
    }

    /// Oversized inputs are refused with the right `TooLarge` class, never
    /// buffered wholesale.
    #[test]
    fn oversized_inputs_are_rejected(
        extra in 1usize..4096,
        declared_body in 513usize..1_000_000
    ) {
        let limits = small_limits();

        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(limits.max_line_bytes + extra));
        prop_assert_eq!(
            parse(long_target.as_bytes(), &limits),
            Err(ParseError::TooLarge("request line or header"))
        );

        let big_body =
            format!("POST /reload HTTP/1.1\r\nContent-Length: {declared_body}\r\n\r\n");
        prop_assert_eq!(
            parse(big_body.as_bytes(), &limits),
            Err(ParseError::TooLarge("body"))
        );

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=limits.max_headers {
            many_headers.push_str(&format!("x-h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        prop_assert_eq!(
            parse(many_headers.as_bytes(), &limits),
            Err(ParseError::TooLarge("header count"))
        );
    }
}
