//! End-to-end test of the `llmpilot-serve` daemon: start on an ephemeral
//! port, hammer `/recommend` from concurrent client threads, hot-reload
//! the dataset mid-load, and check that no response is dropped or
//! corrupted, that post-reload answers reflect the new dataset, and that
//! `/metrics` counters are consistent with the issued request count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use llm_pilot::core::{CharacterizationDataset, PerfRow, PredictorConfig};
use llm_pilot::ml::GbdtParams;
use llm_pilot::serve::{http_request, HttpClient, ServeConfig, Server};

/// Synthetic characterization rows: `itl_scale[profile]` sets per-user
/// inter-token latency, so feasibility (ITL ≤ 50 ms) flips per profile.
fn dataset(itl_scale: &[(&str, f64)]) -> CharacterizationDataset {
    let mut rows = Vec::new();
    for llm in ["Llama-2-7b", "Llama-2-13b"] {
        for &(profile, scale) in itl_scale {
            for users in [1u32, 2, 4, 8, 16, 32, 64, 128] {
                rows.push(PerfRow {
                    llm: llm.into(),
                    profile: profile.into(),
                    users,
                    ttft_s: 0.05 * f64::from(users),
                    nttft_s: 0.0001 * f64::from(users),
                    itl_s: scale * f64::from(users),
                    throughput: 100.0 * f64::from(users),
                });
            }
        }
    }
    CharacterizationDataset { rows, ..Default::default() }
}

/// Both profiles feasible up to 16 users; the cheaper A100-40 wins.
fn dataset_v1() -> CharacterizationDataset {
    dataset(&[("1xA100-40GB", 0.002), ("1xA100-80GB", 0.002)])
}

/// A100-40 now violates ITL even at one user; A100-80 must win.
fn dataset_v2() -> CharacterizationDataset {
    dataset(&[("1xA100-40GB", 2.0), ("1xA100-80GB", 0.002)])
}

fn fast_predictor() -> PredictorConfig {
    PredictorConfig {
        gbdt: GbdtParams { n_trees: 20, max_depth: 3, ..GbdtParams::default() },
        ..PredictorConfig::default()
    }
}

fn extract_str<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = json.find(&needle)? + needle.len();
    let end = json[start..].find('"')? + start;
    Some(&json[start..end])
}

fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Value of a Prometheus series (exact `name{labels}` match) in a scrape.
fn metric_value(scrape: &str, series: &str) -> Option<f64> {
    scrape
        .lines()
        .find(|l| l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' '))
        .and_then(|l| l[series.len() + 1..].trim().parse().ok())
}

#[test]
fn serve_end_to_end_with_hot_reload_under_concurrent_load() {
    let dir = std::env::temp_dir();
    let data_path = dir.join(format!("llmpilot-e2e-{}.csv", std::process::id()));
    std::fs::write(&data_path, dataset_v1().to_csv()).unwrap();

    let mut config = ServeConfig::new(&data_path);
    config.addr = "127.0.0.1:0".into();
    config.workers = 4;
    config.queue_capacity = 512;
    config.cache_capacity = 1024;
    config.watch_interval = None; // reloads are explicit POST /reload here
    config.predictor = fast_predictor();
    let handle = Server::start(config).expect("server should start");
    let addr = handle.addr();

    let issued_recommend = Arc::new(AtomicU64::new(0));

    // --- Phase 1: pre-reload answers come from dataset v1. -------------
    let resp = http_request(addr, "GET", "/recommend?model=Llama-2-13b").unwrap();
    issued_recommend.fetch_add(1, Ordering::SeqCst);
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let body = resp.text();
    assert_eq!(extract_str(&body, "profile"), Some("1xA100-40GB"));
    assert_eq!(extract_u64(&body, "dataset_generation"), Some(1));
    let pods_v1 = extract_u64(&body, "pods").unwrap();
    assert!(pods_v1 >= 1);

    // Identical repeat must be a cache hit with an identical body.
    let repeat = http_request(addr, "GET", "/recommend?model=Llama-2-13b").unwrap();
    issued_recommend.fetch_add(1, Ordering::SeqCst);
    assert_eq!(repeat.header("x-cache"), Some("hit"));
    assert_eq!(repeat.text(), body);

    // --- Phase 2: concurrent load with a hot reload in the middle. ----
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 60;
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let issued = Arc::clone(&issued_recommend);
        clients.push(std::thread::spawn(move || {
            let mut conn = HttpClient::connect(addr).expect("client connect");
            let mut answers = Vec::new();
            for i in 0..REQUESTS_PER_CLIENT {
                let llm = if (c + i) % 2 == 0 { "Llama-2-7b" } else { "Llama-2-13b" };
                let users = 50 + ((c * REQUESTS_PER_CLIENT + i) % 4) * 50;
                let target = format!("/recommend?model={llm}&users={users}");
                let resp = conn.request("GET", &target).expect("request on live server");
                issued.fetch_add(1, Ordering::SeqCst);
                answers.push(resp);
                std::thread::sleep(Duration::from_millis(2));
            }
            answers
        }));
    }

    // Let the load ramp, then swap the dataset under it.
    std::thread::sleep(Duration::from_millis(40));
    std::fs::write(&data_path, dataset_v2().to_csv()).unwrap();
    let reload = http_request(addr, "POST", "/reload").unwrap();
    assert_eq!(reload.status, 200, "body: {}", reload.text());
    let reload_body = reload.text();
    assert!(reload_body.contains("\"reloaded\":true"), "body: {reload_body}");
    assert_eq!(extract_u64(&reload_body, "dataset_generation"), Some(2));
    assert_eq!(extract_u64(&reload_body, "model_generation"), Some(2));

    // Every concurrent response must be well-formed: HTTP 200, a known
    // profile, and generation tags from either the old or new generation
    // — never a mix, never a dropped/corrupted reply.
    let mut total = 0usize;
    for client in clients {
        for resp in client.join().expect("client thread must not panic") {
            total += 1;
            assert_eq!(resp.status, 200, "body: {}", resp.text());
            let body = resp.text();
            let profile = extract_str(&body, "profile").expect("profile field");
            assert!(
                profile == "1xA100-40GB" || profile == "1xA100-80GB",
                "unexpected profile {profile} in {body}"
            );
            let ds_gen = extract_u64(&body, "dataset_generation").unwrap();
            let model_gen = extract_u64(&body, "model_generation").unwrap();
            assert!(ds_gen == 1 || ds_gen == 2, "bad generation in {body}");
            assert_eq!(ds_gen, model_gen, "mixed generations in {body}");
            if ds_gen == 2 {
                assert_eq!(profile, "1xA100-80GB", "post-reload answer must use v2: {body}");
            }
            assert!(extract_u64(&body, "pods").unwrap() >= 1);
        }
    }
    assert_eq!(total, CLIENTS * REQUESTS_PER_CLIENT);

    // --- Phase 3: post-reload answers reflect dataset v2. -------------
    let resp = http_request(addr, "GET", "/recommend?model=Llama-2-13b&users=333").unwrap();
    issued_recommend.fetch_add(1, Ordering::SeqCst);
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let body = resp.text();
    assert_eq!(extract_str(&body, "profile"), Some("1xA100-80GB"));
    assert_eq!(extract_u64(&body, "dataset_generation"), Some(2));
    assert_eq!(extract_u64(&body, "model_generation"), Some(2));

    // --- Phase 4: /metrics is consistent with what we issued. ----------
    let issued = issued_recommend.load(Ordering::SeqCst);
    let scrape = http_request(addr, "GET", "/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let text = scrape.text();
    assert_eq!(
        metric_value(&text, "llmpilot_requests_total{route=\"recommend\"}"),
        Some(issued as f64),
        "recommend counter must match issued requests"
    );
    assert_eq!(metric_value(&text, "llmpilot_requests_total{route=\"reload\"}"), Some(1.0));
    assert_eq!(metric_value(&text, "llmpilot_reloads_total"), Some(1.0));
    assert_eq!(metric_value(&text, "llmpilot_dataset_generation"), Some(2.0));
    assert_eq!(metric_value(&text, "llmpilot_model_generation"), Some(2.0));
    assert_eq!(metric_value(&text, "llmpilot_responses_total{class=\"5xx\"}"), Some(0.0));
    assert_eq!(metric_value(&text, "llmpilot_queue_rejected_total"), Some(0.0));
    let hits = metric_value(&text, "llmpilot_cache_requests_total{result=\"hit\"}").unwrap();
    let misses = metric_value(&text, "llmpilot_cache_requests_total{result=\"miss\"}").unwrap();
    assert_eq!(hits + misses, issued as f64, "every recommend request is exactly one cache lookup");
    assert!(hits >= 1.0, "the repeat query must have hit the cache");
    let count = metric_value(&text, "llmpilot_request_duration_seconds_count").unwrap();
    // Latency is observed for every handled request (recommend + reload +
    // this scrape's predecessors); at minimum all recommends are in it.
    assert!(count >= issued as f64);

    // --- Phase 5: error paths and graceful shutdown. -------------------
    let resp = http_request(addr, "GET", "/recommend").unwrap();
    assert_eq!(resp.status, 400);
    let resp = http_request(addr, "GET", "/recommend?model=no-such-llm").unwrap();
    assert_eq!(resp.status, 400);
    let resp = http_request(addr, "GET", "/recommend?model=Llama-2-13b&users=banana").unwrap();
    assert_eq!(resp.status, 400);
    let resp = http_request(addr, "GET", "/recommend?model=Llama-2-13b&itl=0.0001").unwrap();
    assert_eq!(resp.status, 404, "impossibly tight SLA must be NoFeasible");
    let resp = http_request(addr, "GET", "/nope").unwrap();
    assert_eq!(resp.status, 404);
    let resp = http_request(addr, "GET", "/healthz").unwrap();
    assert_eq!(resp.status, 200);

    handle.shutdown();
    std::fs::remove_file(&data_path).ok();
}

#[test]
fn serve_issues_trace_ids_and_writes_a_chrome_trace_at_shutdown() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let data_path = dir.join(format!("llmpilot-e2e-trace-{pid}.csv"));
    let trace_path = dir.join(format!("llmpilot-e2e-trace-{pid}.json"));
    std::fs::write(&data_path, dataset_v1().to_csv()).unwrap();

    let recorder = llm_pilot::obs::Recorder::enabled();
    let mut config = ServeConfig::new(&data_path);
    config.addr = "127.0.0.1:0".into();
    config.workers = 2;
    config.watch_interval = None;
    config.predictor = fast_predictor();
    config.recorder = recorder.clone();
    config.trace_out = Some(trace_path.clone());
    let handle = Server::start(config).expect("server should start");
    let addr = handle.addr();

    // Every response carries a unique X-Trace-Id, across routes and
    // status codes (including errors).
    let mut trace_ids = Vec::new();
    for target in ["/healthz", "/recommend?model=Llama-2-13b", "/recommend", "/nope"] {
        let resp = http_request(addr, "GET", target).unwrap();
        let id = resp
            .header("x-trace-id")
            .unwrap_or_else(|| panic!("{target} response must carry X-Trace-Id"))
            .to_string();
        assert!(
            id.len() >= 8 && id.chars().all(|c| c.is_ascii_hexdigit()),
            "trace id {id:?} for {target} is not hex"
        );
        trace_ids.push(id);
    }
    let unique: std::collections::HashSet<_> = trace_ids.iter().collect();
    assert_eq!(unique.len(), trace_ids.len(), "trace ids must be unique: {trace_ids:?}");

    // The recorder saw the request spans plus the startup retraining, and
    // the /metrics scrape surfaces the span count as a gauge-style counter.
    let scrape = http_request(addr, "GET", "/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let text = scrape.text();
    let spans = metric_value(&text, "llmpilot_trace_spans_total")
        .expect("llmpilot_trace_spans_total must be exported");
    assert!(spans >= 4.0, "expected at least the four request spans, got {spans}");

    handle.shutdown();

    // Shutdown flushed a valid Chrome trace containing the request spans
    // and the startup `serve.retrain` with the training phases beneath it.
    let document = std::fs::read_to_string(&trace_path).expect("trace file written at shutdown");
    let stats = llm_pilot::obs::check::check_chrome_trace(
        &document,
        &["serve.request", "serve.retrain", "serving.train", "gbdt.fit"],
    )
    .expect("trace must validate");
    assert!(stats.span_events >= 4, "expected request + retrain spans, got {}", stats.span_events);

    let snapshot = recorder.snapshot();
    let requests = snapshot.events.iter().filter(|s| s.name == "serve.request").count();
    assert_eq!(requests, 5, "four probes plus the /metrics scrape");
    let retrains = snapshot.events.iter().filter(|s| s.name == "serve.retrain").count();
    assert_eq!(retrains, 1, "exactly one startup training run");

    std::fs::remove_file(&data_path).ok();
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn serve_admission_control_rejects_when_queue_is_full() {
    let dir = std::env::temp_dir();
    let data_path = dir.join(format!("llmpilot-e2e-admit-{}.csv", std::process::id()));
    std::fs::write(&data_path, dataset_v1().to_csv()).unwrap();

    let mut config = ServeConfig::new(&data_path);
    config.addr = "127.0.0.1:0".into();
    config.workers = 1;
    config.queue_capacity = 1;
    config.watch_interval = None;
    config.read_timeout = Duration::from_millis(500);
    config.predictor = fast_predictor();
    let handle = Server::start(config).expect("server should start");
    let addr = handle.addr();

    // Two idle connections: the single worker blocks reading the first,
    // the second fills the one-slot queue.
    let idle1 = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let idle2 = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The third connection must be turned away by the acceptor itself. The
    // acceptor answers 503 without reading the request, so write the
    // request best-effort (the peer may already have closed) and read the
    // raw response.
    let mut rejected = std::net::TcpStream::connect(addr).unwrap();
    rejected.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = std::io::Write::write_all(&mut rejected, b"GET /healthz HTTP/1.1\r\n\r\n");
    let mut raw = Vec::new();
    let _ = std::io::Read::read_to_end(&mut rejected, &mut raw);
    let raw = String::from_utf8_lossy(&raw);
    assert!(raw.starts_with("HTTP/1.1 503 "), "expected a 503, got {raw:?}");
    assert!(raw.to_ascii_lowercase().contains("retry-after: 1"), "got {raw:?}");

    drop(idle1);
    drop(idle2);

    // After the idle connections drain, service resumes.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match http_request(addr, "GET", "/healthz") {
            Ok(resp) if resp.status == 200 => break,
            _ if std::time::Instant::now() > deadline => {
                panic!("server did not recover after overload")
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let scrape = http_request(addr, "GET", "/metrics").unwrap().text();
    assert!(
        metric_value(&scrape, "llmpilot_queue_rejected_total").unwrap() >= 1.0,
        "admission control must be visible in metrics"
    );

    handle.shutdown();
    std::fs::remove_file(&data_path).ok();
}
