//! Property-based guarantees of the fault-tolerant sweep driver
//! (`core::sweep`):
//!
//! 1. for any fault seed, a sweep with transient faults and a sufficient
//!    retry budget yields a dataset **bit-identical** to a fault-free sweep
//!    (fault decisions are drawn per attempt; measurement seeds are
//!    attempt-independent);
//! 2. for any chunking, an interrupted sweep resumed from its journal is
//!    **bit-identical** to a one-shot sweep (rows round-trip the journal
//!    through shortest-round-trip float formatting).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use llm_pilot::core::sweep::{SweepDriver, SweepOptions};
use llm_pilot::core::{CharacterizationDataset, CharacterizeConfig};
use llm_pilot::sim::fault::{FaultConfig, FaultPlan};
use llm_pilot::sim::gpu::{a100_40, t4, GpuProfile};
use llm_pilot::sim::llm::{flan_t5_xl, llama2_7b, LlmSpec};
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn sampler() -> &'static WorkloadSampler {
    static SAMPLER: OnceLock<WorkloadSampler> = OnceLock::new();
    SAMPLER.get_or_init(|| {
        let traces = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 8_000,
            seed: 55,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let model = WorkloadModel::fit(
            &traces,
            &[Param::InputTokens, Param::OutputTokens, Param::BatchSize],
        )
        .unwrap();
        WorkloadSampler::new(model)
    })
}

fn quick_config() -> CharacterizeConfig {
    CharacterizeConfig { duration_s: 8.0, user_sweep: vec![1, 4], ..CharacterizeConfig::default() }
}

fn grid() -> (Vec<LlmSpec>, Vec<GpuProfile>) {
    (
        // llama2-7b on 1xT4 is infeasible, so the grid exercises all
        // outcome kinds.
        vec![flan_t5_xl(), llama2_7b()],
        vec![GpuProfile::new(t4(), 1), GpuProfile::new(a100_40(), 1)],
    )
}

/// The fault-free reference dataset (identical across cases; computed once).
fn clean_dataset() -> &'static CharacterizationDataset {
    static CLEAN: OnceLock<CharacterizationDataset> = OnceLock::new();
    CLEAN.get_or_init(|| {
        let (llms, profiles) = grid();
        SweepDriver::builder(&llms, &profiles, sampler())
            .config(quick_config())
            .build()
            .expect("valid options")
            .run()
            .expect("no journal, no I/O")
            .0
    })
}

/// A process-unique scratch path for a journal file.
fn scratch_journal() -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("llmpilot-proptest-sweep-{}-{n}.csv", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any fault seed: transient faults + enough retries ⇒ the recovered
    /// dataset is bit-identical to the fault-free one.
    #[test]
    fn faulty_sweep_with_retries_is_bit_identical(seed in 0u64..1_000_000_000) {
        let (llms, profiles) = grid();
        let options = SweepOptions {
            // Per attempt: deploy, tuning and two load tests each fail with
            // p = 0.25 ⇒ ~0.32 success per attempt; 50 attempts make a
            // permanently failed cell (~1e-8) essentially impossible.
            plan: FaultPlan::new(FaultConfig::transient(seed, 0.25)),
            max_attempts: 50,
            ..SweepOptions::default()
        };
        let (ds, report) =
            SweepDriver::builder(&llms, &profiles, sampler())
                .config(quick_config())
                .options(options)
                .build()
                .expect("valid options")
                .run()
                .expect("no journal, no I/O");
        prop_assert_eq!(report.failed(), 0, "retries must recover every cell (seed {})", seed);
        prop_assert_eq!(&ds, clean_dataset());
    }

    /// Any chunk size and fault seed: a sweep interrupted every `chunk`
    /// cells and resumed from its journal equals the one-shot sweep —
    /// dataset bit-for-bit, per-cell statuses included.
    #[test]
    fn resumed_sweep_is_bit_identical_to_one_shot(
        chunk in 1usize..4,
        seed in 0u64..1_000_000_000,
    ) {
        let (llms, profiles) = grid();
        let base = SweepOptions {
            // Mild transient faults with a small retry budget, so resumed
            // journals carry measured, infeasible AND failed cells.
            plan: FaultPlan::new(FaultConfig::transient(seed, 0.3)),
            max_attempts: 3,
            ..SweepOptions::default()
        };

        let (one_shot_ds, one_shot_report) =
            SweepDriver::builder(&llms, &profiles, sampler())
                .config(quick_config())
                .options(base.clone())
                .build()
                .expect("valid options")
                .run()
                .expect("no journal, no I/O");

        let journal = scratch_journal();
        let chunked = SweepOptions {
            journal_path: Some(journal.clone()),
            max_cells_per_run: Some(chunk),
            ..base
        };
        let driver = SweepDriver::builder(&llms, &profiles, sampler())
            .config(quick_config())
            .options(chunked)
            .build()
            .expect("valid options");
        let mut rounds = 0;
        let (ds, report) = loop {
            let (ds, report) = driver.run().expect("journal I/O");
            rounds += 1;
            prop_assert!(rounds <= 8, "chunked sweep failed to converge");
            if report.is_complete() {
                break (ds, report);
            }
        };
        let _ = std::fs::remove_file(&journal);

        prop_assert_eq!(&ds, &one_shot_ds);
        prop_assert_eq!(&report.cells, &one_shot_report.cells);
    }
}
