//! Property-based guarantees of the log-linear HDR histogram
//! (`obs::hist::Histogram`):
//!
//! 1. every quantile agrees with the exact nearest-rank quantile of the
//!    sorted sample within the configured relative error (≤1% at the
//!    default two significant figures), at any sample size — including a
//!    deterministic million-sample case;
//! 2. merging histograms is exactly equivalent to recording the union of
//!    their samples (bucket counts are integers, so this is bit-exact).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llm_pilot::obs::hist::Histogram;

/// Exact nearest-rank quantile of a sorted sample: the same rank rule
/// the histogram implements, evaluated without bucketing error.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = (q * n as f64).ceil().clamp(1.0, n as f64) as usize;
    sorted[rank - 1]
}

/// Assert the histogram's quantile is within 1% (relative) of the exact
/// sorted-sample quantile; tiny values get a ±1 absolute allowance
/// because integer buckets cannot subdivide below 1 ns.
fn assert_close(hist: &Histogram, sorted: &[u64], q: f64) {
    let got = hist.quantile(q);
    let want = exact_quantile(sorted, q);
    let tol = (want as f64 * 0.01).max(1.0);
    assert!(
        (got as f64 - want as f64).abs() <= tol,
        "quantile({q}) = {got}, exact = {want} (n = {}, tol = {tol})",
        sorted.len()
    );
}

const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles of arbitrary samples spanning nine decades stay within
    /// the advertised error bound, at every probed quantile.
    #[test]
    fn quantiles_track_the_exact_sorted_reference(
        values in prop::collection::vec(1u64..1_000_000_000, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::default();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        assert_close(&hist, &sorted, q);
        for q in QS {
            assert_close(&hist, &sorted, q);
        }
        // min/max/count are exact, not approximations.
        prop_assert_eq!(hist.min(), sorted[0]);
        prop_assert_eq!(hist.max(), *sorted.last().unwrap());
        prop_assert_eq!(hist.count(), sorted.len() as u64);
    }

    /// `a.merge(&b)` leaves `a` indistinguishable from a histogram that
    /// recorded both sample sets directly.
    #[test]
    fn merge_is_equivalent_to_recording_the_union(
        left in prop::collection::vec(1u64..1_000_000_000, 0..200),
        right in prop::collection::vec(1u64..1_000_000_000, 0..200),
    ) {
        let a = Histogram::default();
        let b = Histogram::default();
        let union = Histogram::default();
        for &v in &left {
            a.record(v);
            union.record(v);
        }
        for &v in &right {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), union.count());
        prop_assert_eq!(a.nonzero_buckets(), union.nonzero_buckets());
        prop_assert_eq!(a.summary(), union.summary());
    }
}

/// The acceptance gate: a million log-uniform samples, quantiles within
/// 1% of the exact sorted reference across the whole probe set.
#[test]
fn million_sample_quantiles_stay_within_one_percent() {
    let mut rng = StdRng::seed_from_u64(0x0b5e55ed);
    let hist = Histogram::default();
    let mut values = Vec::with_capacity(1_000_000);
    for _ in 0..1_000_000u32 {
        // Log-uniform over [1 µs, 10 s) in ns: exercises many decades the
        // way latency data does.
        let exponent = rng.random_range(3.0f64..10.0);
        let v = 10f64.powf(exponent) as u64;
        hist.record(v);
        values.push(v);
    }
    values.sort_unstable();
    for q in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 0.9999] {
        assert_close(&hist, &values, q);
    }
    assert_eq!(hist.count(), 1_000_000);
    assert_eq!(hist.min(), values[0]);
    assert_eq!(hist.max(), *values.last().unwrap());
}
