//! Property-based round-trip of the observability pipeline: arbitrary
//! span trees recorded on a [`Recorder`] must export to Chrome trace JSON
//! that (a) passes the structural checker — valid JSON, unique ids, no
//! orphan parents, children enclosed by parents, strict per-thread
//! nesting — and (b) parses back to exactly the recorded tree: same
//! names, ids, parent links, timestamps, and argument values.

use proptest::prelude::*;

use llm_pilot::obs::check::check_chrome_trace;
use llm_pilot::obs::chrome::to_chrome_json;
use llm_pilot::obs::json::{parse, Json};
use llm_pilot::obs::{ArgValue, Recorder, Span};

const NAMES: [&str; 7] = [
    "sweep.cell",
    "engine.step",
    "tuner.ramp",
    "gbdt.fit",
    "serve.request",
    "µs.escapes \"quoted\"\n",
    "a",
];

/// One recording instruction: `(name index, action, value)`. Action 0
/// opens a nested span, 1 closes the innermost open span, 2 records a
/// leaf span, 3 bumps a counter.
type Op = (u8, u8, u64);

/// Replay `ops` on a fresh recorder; returns it with every span closed.
fn record(ops: &[Op]) -> Recorder {
    let rec = Recorder::enabled();
    let mut open: Vec<Span> = Vec::new();
    for &(name_i, action, value) in ops {
        let name = NAMES[name_i as usize % NAMES.len()];
        match action % 4 {
            0 => open.push(rec.span(name).arg("value", value)),
            1 => drop(open.pop()),
            2 => drop(
                rec.span(name)
                    .arg("value", value)
                    .arg("even", value % 2 == 0)
                    .arg("label", format!("v{value}")),
            ),
            _ => rec.counter_add("ops.counted", 1),
        }
    }
    // Close the innermost spans first, as RAII guards would.
    while let Some(span) = open.pop() {
        drop(span);
    }
    rec
}

/// The `(ts, dur)` strings of the chrome export are exact decimal µs with
/// a 3-digit ns fraction, so scaling back by 1000 and rounding recovers
/// the nanosecond value exactly (well below 2^53).
fn ns(event: &Json, key: &str) -> Option<u64> {
    event.get(key).and_then(Json::as_f64).map(|us| (us * 1_000.0).round() as u64)
}

proptest! {
    /// Export → parse recovers the recorded span tree exactly, and the
    /// structural checker accepts every generated trace.
    #[test]
    fn chrome_export_round_trips_arbitrary_span_trees(
        ops in prop::collection::vec((0u8..8, 0u8..4, 0u64..1_000_000), 1..80)
    ) {
        let rec = record(&ops);
        let snapshot = rec.snapshot();
        let document = to_chrome_json(&snapshot);

        // (a) Structural validity, including parent/nesting invariants.
        let stats = check_chrome_trace(&document, &[]);
        prop_assert!(stats.is_ok(), "checker rejected the export: {}", stats.unwrap_err());
        let stats = stats.unwrap();
        prop_assert_eq!(stats.span_events, snapshot.events.len());
        prop_assert_eq!(stats.span_events as u64, rec.spans_recorded());

        // (b) Exact round trip of every span the recorder captured.
        let root = parse(&document);
        prop_assert!(root.is_ok(), "export is not valid JSON: {}", root.unwrap_err());
        let root = root.unwrap();
        let events = root.get("traceEvents").and_then(Json::as_array).unwrap();
        let mut by_id = std::collections::HashMap::new();
        for event in events {
            if event.get("ph").and_then(Json::as_str) == Some("X") {
                let id = event.get("args").and_then(|a| a.get("id")).and_then(Json::as_u64);
                prop_assert!(id.is_some(), "span event without args.id");
                by_id.insert(id.unwrap(), event);
            }
        }
        prop_assert_eq!(by_id.len(), snapshot.events.len());
        for recorded in &snapshot.events {
            let exported = by_id.get(&recorded.id);
            prop_assert!(exported.is_some(), "span {} missing from export", recorded.id);
            let exported = *exported.unwrap();
            prop_assert_eq!(
                exported.get("name").and_then(Json::as_str),
                Some(recorded.name.as_ref())
            );
            prop_assert_eq!(exported.get("tid").and_then(Json::as_u64), Some(recorded.tid));
            prop_assert_eq!(ns(exported, "ts"), Some(recorded.begin_ns));
            prop_assert_eq!(ns(exported, "dur"), Some(recorded.duration_ns()));
            let args = exported.get("args").unwrap();
            prop_assert_eq!(
                args.get("parent").and_then(Json::as_u64),
                recorded.parent,
                "span {} parent link corrupted", recorded.id
            );
            // Typed arguments survive: u64 and bool exactly, strings
            // (incl. escapes) byte-for-byte.
            for (key, value) in &recorded.args {
                let got = args.get(key.as_ref());
                prop_assert!(got.is_some(), "span {} lost arg {:?}", recorded.id, key);
                let got = got.unwrap();
                match value {
                    ArgValue::U64(v) => prop_assert_eq!(got.as_u64(), Some(*v)),
                    ArgValue::Bool(v) => prop_assert_eq!(got, &Json::Bool(*v)),
                    ArgValue::Str(v) => prop_assert_eq!(got.as_str(), Some(v.as_str())),
                    _ => {}
                }
            }
        }

        // Counters survive as "C" events.
        let counted = ops.iter().filter(|(_, action, _)| action % 4 == 3).count() as u64;
        if counted > 0 {
            prop_assert_eq!(
                snapshot.counters.iter().find(|(n, _)| n == "ops.counted").map(|(_, v)| *v),
                Some(counted)
            );
            prop_assert!(stats.counter_events >= 1);
        }
    }
}
