//! Property-based invariants spanning crates: engine conservation laws,
//! sampler distributions, recommendation math.

use proptest::prelude::*;

use llm_pilot::core::recommend::{pods_needed, u_max, LatencyConstraints};
use llm_pilot::sim::cluster::split_users;
use llm_pilot::sim::engine::Engine;
use llm_pilot::sim::gpu::{a100_80, GpuProfile};
use llm_pilot::sim::llm::llama2_13b;
use llm_pilot::sim::perf_model::{PerfModel, PerfModelConfig};
use llm_pilot::sim::request::RequestSpec;

fn engine() -> Engine {
    let perf =
        PerfModel::new(llama2_13b(), GpuProfile::new(a100_80(), 1), PerfModelConfig::default());
    Engine::new(perf, 100_000)
}

proptest! {
    /// Every submitted request completes, emits exactly `batch × output`
    /// tokens (one `is_first`), and the engine drains to zero weight with a
    /// monotone clock.
    #[test]
    fn engine_conserves_tokens(
        requests in prop::collection::vec((1u32..2000, 1u32..300, 1u32..4), 1..25)
    ) {
        let mut e = engine();
        let mut expected_tokens = 0u64;
        let mut ids = Vec::new();
        for (input, output, batch) in requests {
            let spec = RequestSpec::batched(input, output, batch);
            prop_assume!(spec.weight() <= e.max_batch_weight());
            expected_tokens += spec.total_output_tokens();
            ids.push(e.submit(spec).unwrap());
        }
        let mut tokens = 0u64;
        let mut firsts = 0usize;
        let mut completions = 0usize;
        let mut clock = 0.0f64;
        while e.has_work() {
            let r = e.step();
            prop_assert!(e.clock() >= clock);
            clock = e.clock();
            for em in &r.emissions {
                tokens += u64::from(em.count);
                firsts += usize::from(em.is_first);
            }
            completions += r.completions.len();
        }
        prop_assert_eq!(tokens, expected_tokens);
        prop_assert_eq!(firsts, ids.len());
        prop_assert_eq!(completions, ids.len());
        prop_assert_eq!(e.running_weight(), 0);
        prop_assert_eq!(e.total_tokens_emitted(), expected_tokens);
    }

    /// The running batch's weight never exceeds the configured maximum.
    #[test]
    fn engine_respects_weight_cap(
        requests in prop::collection::vec((1u32..3000, 1u32..400), 1..30),
        cap in 4_000u64..20_000
    ) {
        let perf = PerfModel::new(
            llama2_13b(),
            GpuProfile::new(a100_80(), 1),
            PerfModelConfig::default(),
        );
        let mut e = Engine::new(perf, cap);
        for (input, output) in requests {
            let spec = RequestSpec::new(input, output);
            if spec.weight() <= cap {
                e.submit(spec).unwrap();
            }
        }
        while e.has_work() {
            e.step();
            prop_assert!(e.running_weight() <= cap);
        }
    }

    /// `u_max` returns the longest satisfying prefix of an ascending grid.
    #[test]
    fn u_max_is_longest_satisfying_prefix(
        latencies in prop::collection::vec((0.0f64..0.3, 0.0f64..0.2), 1..12)
    ) {
        let grid: Vec<(u32, f64, f64)> = latencies
            .iter()
            .enumerate()
            .map(|(i, &(l1, l2))| (1u32 << i, l1, l2))
            .collect();
        let c = LatencyConstraints { nttft_s: 0.1, itl_s: 0.05 };
        let result = u_max(&grid, &c);
        let prefix_len =
            grid.iter().take_while(|&&(_, l1, l2)| c.satisfied_by(l1, l2)).count();
        if prefix_len == 0 {
            prop_assert_eq!(result, None);
        } else {
            prop_assert_eq!(result, Some(grid[prefix_len - 1].0));
        }
    }

    /// `pods_needed` is the exact ceiling.
    #[test]
    fn pods_needed_is_exact_ceiling(total in 1u32..10_000, cap in 1u32..512) {
        let pods = pods_needed(total, cap);
        prop_assert!(u64::from(pods) * u64::from(cap) >= u64::from(total));
        prop_assert!(u64::from(pods - 1) * u64::from(cap) < u64::from(total));
    }

    /// `split_users` conserves users and stays balanced within one.
    #[test]
    fn split_users_conserves_and_balances(total in 0u32..5_000, pods in 1u32..64) {
        let split = split_users(total, pods);
        prop_assert_eq!(split.len(), pods as usize);
        prop_assert_eq!(split.iter().sum::<u32>(), total);
        let max = *split.iter().max().unwrap();
        let min = *split.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }
}
