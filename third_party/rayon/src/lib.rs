//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this shim provides the
//! `par_iter()` / `into_par_iter()` entry points the workspace uses and maps
//! them to *sequential*, order-preserving `std` iterators. Every rayon call
//! site in the workspace is a pure fan-out followed by an ordered `collect`
//! (or reduction over commutative ops), so sequential execution is
//! semantically identical — including element order — just single-threaded.

pub mod iter {
    /// `into_par_iter()` for owned collections — sequential fallback.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;

        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for borrowed collections — sequential fallback.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;

        #[inline]
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for mutably borrowed collections — sequential fallback.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Item = <&'data mut C as IntoIterator>::Item;
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        #[inline]
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// Sequential stand-in for `rayon::current_num_threads`: this shim runs
/// everything on the calling thread, so the honest answer is 1.
#[inline]
pub fn current_num_threads() -> usize {
    1
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
#[inline]
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let owned: Vec<i32> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(owned, vec![4, 2, 5, 2, 6]);
    }
}
