//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships minimal implementations of the handful of `rand` APIs
//! it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`] and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different stream
//! than upstream `rand`'s ChaCha12, but the workspace only relies on
//! *determinism* (same seed ⇒ same stream), never on matching upstream
//! output bit-for-bit.

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Low-level source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full "unit" domain by
/// [`Rng::random`] (`[0, 1)` for floats, the full value range for integers).
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types sampleable uniformly from a caller-supplied range.
pub trait SampleUniform: Sized {
    /// Sample from `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) + i128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo reduction has negligible bias for the span sizes
                // used in this workspace (all far below 2^64).
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo + v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let u: f64 = StandardUniform::sample(rng);
                (low as f64 + u * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// rand 0.10 moved the sampling helpers onto an extension trait; the
/// workspace imports it under both names, so alias it.
pub use Rng as RngExt;

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The workspace's standard RNG: xoshiro256++ (public domain algorithm by
/// Blackman & Vigna), seeded through SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq {
    use crate::Rng;

    /// Slice extension methods (only `shuffle` is used by the workspace).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
