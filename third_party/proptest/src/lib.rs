//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest used by this workspace: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its inputs
//! but is not minimized), and cases are drawn from a fixed per-test seed so
//! runs are deterministic. The default is 64 cases per property; set
//! `PROPTEST_CASES` to override.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::{SampleUniform, SeedableRng};

/// Deterministic RNG handed to strategies while generating a case.
#[derive(Debug, Clone)]
pub struct TestRng(rand::StdRng);

impl TestRng {
    /// Seed derived from the test's source location and case index, so every
    /// property gets its own reproducible stream.
    pub fn for_case(file: &str, line: u32, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= u64::from(line);
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^= case;
        h = h.wrapping_mul(0x100_0000_01b3);
        TestRng(rand::StdRng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a generated case did not produce a pass/fail verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject(String),
    /// `prop_assert!`-style failure.
    Fail(String),
}

/// Number of accepted cases each property must run.
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Per-block configuration, settable via
/// `#![proptest_config(ProptestConfig::with_cases(n))]` as the first item
/// inside a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Accepted cases each property must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: cases() as u32 }
    }
}

/// A generator of values for property tests (no shrinking).
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy + PartialOrd + Debug> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy + PartialOrd + Debug> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}
impl_strategy_tuple!(A / a);
impl_strategy_tuple!(A / a, B / b);
impl_strategy_tuple!(A / a, B / b, C / c);
impl_strategy_tuple!(A / a, B / b, C / c, D / d);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e, F / f);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::SampleUniform;
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = usize::sample_range(rng, self.size.lo, self.size.hi_inclusive, true);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy that picks one element of `options` uniformly.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T: Clone + Debug> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::RngCore;
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// `0..=u8::MAX`-style full-domain strategies, mirroring `proptest::num`.
pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Positive, finite `f64`s (magnitudes useful for tests).
        #[derive(Debug, Clone)]
        pub struct Positive;
        pub const POSITIVE: Positive = Positive;

        impl Strategy for Positive {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                rng.random_range(f64::MIN_POSITIVE..1e12)
            }
        }
    }
}

pub mod strategy {
    pub use crate::{Just, Map, Strategy};
}

pub mod test_runner {
    pub use crate::{TestCaseError, TestRng};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that generates [`cases()`] accepted inputs and runs
/// the body, which may use `prop_assert!` / `prop_assume!` / `return Ok(())`.
/// An optional leading `#![proptest_config(expr)]` overrides the case count
/// for the whole block.
#[macro_export]
macro_rules! proptest {
    (@internal $config:expr;
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let target = u64::from(($config).cases);
                let mut accepted: u64 = 0;
                let mut attempts: u64 = 0;
                let max_attempts = target.saturating_mul(50).max(1000);
                while accepted < target {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, target,
                    );
                    let mut rng =
                        $crate::TestRng::for_case(file!(), line!(), attempts);
                    let value = $crate::Strategy::generate(&strategy, &mut rng);
                    let value_desc = format!("{:?}", value);
                    let ($($pat,)+) = value;
                    #[allow(unreachable_code)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}\n  inputs: {}",
                                stringify!($name), accepted, msg, value_desc,
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest!(@internal $config;
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*);
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest!(@internal $crate::ProptestConfig::default();
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*);
    };
}

/// Assert within a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(String::from(
                stringify!($cond),
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            xs in prop::collection::vec((1u32..100, 0.0f64..1.0), 1..10),
            pick in prop::sample::select(vec![2usize, 4, 8]),
            scaled in (1u64..50).prop_map(|v| v * 10),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            for (a, b) in &xs {
                prop_assert!((1..100).contains(a));
                prop_assert!((0.0..1.0).contains(b));
            }
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
            prop_assert_eq!(scaled % 10, 0);
            prop_assume!(scaled > 10);
            prop_assert!(scaled >= 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_arm_limits_cases(x in 0u32..10) {
            use ::std::sync::atomic::{AtomicU64, Ordering};
            static RUNS: AtomicU64 = AtomicU64::new(0);
            let runs = RUNS.fetch_add(1, Ordering::SeqCst) + 1;
            prop_assert!(x < 10);
            prop_assert!(runs <= 5, "config should cap the block at 5 cases, ran {runs}");
        }
    }

    #[test]
    fn rejection_does_not_fail() {
        // Exercised via prop_assume above; also check the error type shape.
        let e = TestCaseError::Reject("x".into());
        assert_ne!(e, TestCaseError::Fail("x".into()));
    }
}
