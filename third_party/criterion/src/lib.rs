//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `iter_batched`, `BenchmarkId`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Results are
//! printed as `bench <name> ... <mean>/iter` lines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; informational only here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to bench closures; `iter` runs and times the routine.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher { samples, elapsed: Duration::ZERO, iters: 0 }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warmup, then `samples` timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn fmt_per_iter(elapsed: Duration, iters: u64) -> String {
    if iters == 0 {
        return "n/a".to_string();
    }
    let ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    println!("bench {name:<40} {:>12}/iter ({} iters)", fmt_per_iter(b.elapsed, b.iters), b.iters);
}

/// Top-level bench driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a function that runs the listed benches with a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
