//! Quickstart: benchmark one LLM inference service on one GPU profile.
//!
//! The minimal LLM-Pilot loop: fit the workload generator to (synthetic)
//! production traces, tune the maximum batch weight for the deployment, and
//! load-test the service across concurrent-user counts, printing the four
//! metrics the paper collects (Sec. III-C).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use llm_pilot::core::characterize::{characterize_cell, CharacterizeConfig};
use llm_pilot::sim::gpu::{a100_80, GpuProfile};
use llm_pilot::sim::llm::llama2_13b;
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn main() {
    // 1. A realistic request population: synthetic production traces with
    //    the joint parameter correlations of real LLM traffic.
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 50_000,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    println!("generated {} trace records", traces.len());

    // 2. The workload generator: a sparse joint histogram over binned
    //    request parameters (Sec. III-B).
    let model = WorkloadModel::fit(&traces, &Param::core()).expect("non-empty traces");
    println!(
        "workload model: {} non-empty bins of {:.1e} possible, {:.1} KB",
        model.num_nonempty_bins(),
        model.num_possible_bins(),
        model.approx_size_bytes() as f64 / 1e3,
    );
    let sampler = WorkloadSampler::new(model);

    // 3. Characterize one (LLM, GPU profile) cell: deploy, tune the maximum
    //    batch weight, and load-test 1..128 concurrent users for 2 minutes
    //    each (Fig. 2's pipeline).
    let llm = llama2_13b();
    let profile = GpuProfile::new(a100_80(), 1);
    let (tuned_weight, rows) =
        characterize_cell(&llm, &profile, &sampler, &CharacterizeConfig::default())
            .measured()
            .expect("Llama-2-13b fits on 1xA100-80GB");

    println!("\n{} on {} (tuned max batch weight: {tuned_weight} tokens)", llm.name, profile);
    println!(
        "{:>6} {:>10} {:>14} {:>10} {:>14}",
        "users", "TTFT [s]", "nTTFT [s/tok]", "ITL [s]", "tput [tok/s]"
    );
    for r in &rows {
        println!(
            "{:>6} {:>10.3} {:>14.6} {:>10.4} {:>14.1}",
            r.users, r.ttft_s, r.nttft_s, r.itl_s, r.throughput
        );
    }
}
