//! Multi-tenant cluster planning (the paper's stated future work, built on
//! the reproduction): several LLM services compete for one finite GPU
//! inventory; the planner picks each tenant's deployment so the most
//! tenants are served at the lowest total cost.
//!
//! ```text
//! cargo run --release --example multi_tenant_planner
//! ```

use llm_pilot::core::recommend::{LatencyConstraints, RecommendationRequest};
use llm_pilot::core::{characterize, CharacterizeConfig};
use llm_pilot::placement::{
    solve_exact, solve_greedy, tenant_from_measurements, GpuInventory, PlacementProblem,
};
use llm_pilot::sim::gpu::paper_profiles;
use llm_pilot::sim::llm::{flan_t5_xl, flan_t5_xxl, llama2_13b, llama2_7b, starcoder};
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn main() {
    // Measure five services across the GPU grid (the admin's offline data).
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 60_000,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    let sampler = WorkloadSampler::new(
        WorkloadModel::fit(&traces, &Param::core()).expect("non-empty traces"),
    );
    let llms = vec![flan_t5_xl(), flan_t5_xxl(), llama2_7b(), llama2_13b(), starcoder()];
    println!("characterizing {} services...", llms.len());
    let dataset = characterize(&llms, &paper_profiles(), &sampler, &CharacterizeConfig::default());

    // The cluster's physical inventory.
    let inventory = GpuInventory::from_counts([
        ("H100-80GB".to_string(), 8),
        ("A100-40GB".to_string(), 16),
        ("A10-24GB".to_string(), 6),
        ("T4-16GB".to_string(), 32),
    ]);
    println!("inventory: {inventory}");

    // Tenants with different loads and SLAs.
    let scenarios = [
        ("chatbot/flan-t5-xl", "google/flan-t5-xl", 200u32, 0.100, 0.050),
        ("summarizer/flan-t5-xxl", "google/flan-t5-xxl", 100, 0.200, 0.080),
        ("assistant/llama-2-7b", "Llama-2-7b", 150, 0.100, 0.050),
        ("assistant-pro/llama-2-13b", "Llama-2-13b", 80, 0.100, 0.060),
        ("code/starcoder", "bigcode/starcoder", 120, 0.150, 0.050),
    ];
    let tenants = scenarios
        .iter()
        .map(|&(name, llm, users, nttft, itl)| {
            let request = RecommendationRequest {
                total_users: users,
                constraints: LatencyConstraints { nttft_s: nttft, itl_s: itl },
                user_grid: (0..8).map(|i| 1u32 << i).collect(),
            };
            tenant_from_measurements(name, llm, &dataset, &paper_profiles(), &request)
        })
        .collect();

    let problem = PlacementProblem { inventory, tenants };
    let greedy = solve_greedy(&problem);
    let exact = solve_exact(&problem);

    for (label, placement) in [("greedy", &greedy), ("exact", &exact)] {
        println!(
            "\n{label}: {}/{} tenants served, total ${:.2}/h",
            placement.served(),
            problem.tenants.len(),
            placement.total_cost(&problem)
        );
        for (tenant, choice) in problem.tenants.iter().zip(&placement.choices) {
            match choice {
                Some(j) => {
                    let o = &tenant.options[*j];
                    println!(
                        "  {:<28} {} x{} pods ({} GPUs, ${:.2}/h)",
                        tenant.name,
                        o.profile,
                        o.pods,
                        o.gpus_needed(),
                        o.cost_per_hour
                    );
                }
                None => println!("  {:<28} UNSERVED", tenant.name),
            }
        }
    }
    assert!(greedy.is_feasible(&problem) && exact.is_feasible(&problem));
}
