//! Workload-generator exploration: fit the joint model to traces, compare
//! marginal CDFs, and contrast joint vs independent sampling — the Sec. V-A
//! analyses as a library walkthrough.
//!
//! ```text
//! cargo run --release --example workload_explorer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use llm_pilot::traces::{
    spearman, summarize, EmpiricalCdf, Param, TraceGenerator, TraceGeneratorConfig,
};
use llm_pilot::workload::{Corpus, IndependentSampler, WorkloadModel, WorkloadSampler};

fn main() {
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 80_000,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    println!("== trace summary (Table II analogue) ==\n{}", summarize(&traces));

    let model = WorkloadModel::fit(&traces, &Param::core()).expect("non-empty traces");
    println!(
        "\n== fitted workload model ==\n{} non-empty bins / {:.2e} possible; {:.1} KB vs {:.1} MB of traces",
        model.num_nonempty_bins(),
        model.num_possible_bins(),
        model.approx_size_bytes() as f64 / 1e3,
        traces.approx_storage_bytes() as f64 / 1e6,
    );

    let joint = WorkloadSampler::new(model.clone());
    let independent = IndependentSampler::new(&model);
    let mut rng = StdRng::seed_from_u64(7);

    // Marginal fidelity: KS distance of generated vs empirical marginals.
    println!("\n== marginal fidelity (Fig. 6 analogue) ==");
    let n = 30_000;
    let samples: Vec<_> = (0..n).map(|_| joint.sample(&mut rng)).collect();
    for p in [Param::InputTokens, Param::OutputTokens, Param::BatchSize] {
        let emp = EmpiricalCdf::new(traces.column(p));
        let gen = EmpiricalCdf::new(samples.iter().map(|s| s.get(p).expect("modeled")).collect());
        println!("{:<16} KS distance = {:.4}", p.name(), emp.ks_distance(&gen));
    }

    // Correlation preservation: joint keeps it, independent destroys it.
    println!("\n== correlation preservation (Sec. V-A) ==");
    let draw = |mode: &str, rng: &mut StdRng| {
        let (mut ins, mut outs) = (Vec::new(), Vec::new());
        for _ in 0..n {
            let s = if mode == "joint" { joint.sample(rng) } else { independent.sample(rng) };
            ins.push(f64::from(s.input_tokens().expect("modeled")));
            outs.push(f64::from(s.output_tokens().expect("modeled")));
        }
        spearman(&ins, &outs)
    };
    let emp_rho = spearman(&traces.column(Param::InputTokens), &traces.column(Param::OutputTokens));
    println!("rho(input, output): empirical {:.3}", emp_rho);
    println!("rho(input, output): joint sampler {:.3}", draw("joint", &mut rng));
    println!("rho(input, output): independent sampler {:.3}", draw("independent", &mut rng));

    // Prompt materialization from the synthetic corpus.
    println!("\n== prompt materialization ==");
    let corpus = Corpus::default();
    let req = joint.sample(&mut rng);
    let tokens = req.input_tokens().expect("modeled");
    let prompt = corpus.prompt(1, tokens);
    println!(
        "request wants {tokens} input tokens; corpus produced {} tokens: {:?}...",
        Corpus::count_tokens(&prompt),
        prompt.chars().take(60).collect::<String>()
    );
}
