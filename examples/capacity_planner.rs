//! SLA what-if planning: for one LLM, sweep the latency constraints and
//! report how the cheapest viable deployment (from measured data) shifts —
//! the administrator-facing view behind Fig. 7c's cost trade-off.
//!
//! ```text
//! cargo run --release --example capacity_planner [llm-name]
//! ```

use llm_pilot::core::evaluate::oracle_recommendation;
use llm_pilot::core::recommend::{LatencyConstraints, RecommendationRequest};
use llm_pilot::core::{characterize, CharacterizeConfig};
use llm_pilot::sim::gpu::paper_profiles;
use llm_pilot::sim::llm::{llm_by_name, llm_catalog};
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "google/flan-t5-xxl".into());
    let Some(llm) = llm_by_name(&target) else {
        eprintln!("unknown LLM {target:?}; known:");
        for m in llm_catalog() {
            eprintln!("  {}", m.name);
        }
        std::process::exit(2);
    };

    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 80_000,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    let sampler = WorkloadSampler::new(
        WorkloadModel::fit(&traces, &Param::core()).expect("non-empty traces"),
    );
    println!("measuring {} across all feasible GPU profiles...", llm.name);
    let dataset = characterize(
        std::slice::from_ref(&llm),
        &paper_profiles(),
        &sampler,
        &CharacterizeConfig::default(),
    );
    println!("{} feasible profiles\n", dataset.tuned_weights.len());

    println!(
        "{:>10} {:>10} {:>8} | {:<14} {:>6} {:>12}",
        "nTTFT[ms]", "ITL[ms]", "users", "best profile", "pods", "cost [$/h]"
    );
    for &users in &[50u32, 200] {
        for &(nttft_ms, itl_ms) in &[(50.0, 25.0), (100.0, 50.0), (200.0, 100.0), (1000.0, 500.0)] {
            let request = RecommendationRequest {
                total_users: users,
                constraints: LatencyConstraints { nttft_s: nttft_ms / 1e3, itl_s: itl_ms / 1e3 },
                user_grid: (0..8).map(|i| 1u32 << i).collect(),
            };
            match oracle_recommendation(&dataset, llm.name, &paper_profiles(), &request) {
                Ok(rec) => println!(
                    "{nttft_ms:>10} {itl_ms:>10} {users:>8} | {:<14} {:>6} {:>12.2}",
                    rec.profile, rec.pods, rec.cost_per_hour
                ),
                Err(_) => println!(
                    "{nttft_ms:>10} {itl_ms:>10} {users:>8} | {:<14} {:>6} {:>12}",
                    "(infeasible)", "-", "-"
                ),
            }
        }
    }
    println!(
        "\nTighter SLAs force bigger-memory (costlier) profiles; relaxed SLAs\n\
         let cheap GPUs win on throughput per dollar (the paper's Fig. 7c)."
    );
}
