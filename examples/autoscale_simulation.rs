//! Autoscaling what-if: play a diurnal demand curve against the pod
//! autoscaler for one service, comparing headroom policies on SLA
//! attainment vs cost (Sec. II-C's "scaled up or down based on demand").
//!
//! ```text
//! cargo run --release --example autoscale_simulation
//! ```

use llm_pilot::core::autoscale::{diurnal_demand, simulate_autoscaler, AutoscalerConfig};
use llm_pilot::core::evaluate::true_u_max;
use llm_pilot::core::recommend::{parse_profile, LatencyConstraints};
use llm_pilot::core::{characterize, CharacterizeConfig};
use llm_pilot::sim::llm::llama2_13b;
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn main() {
    // 1. Measure the service's per-pod capacity under the SLA.
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 60_000,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    let sampler = WorkloadSampler::new(
        WorkloadModel::fit(&traces, &Param::core()).expect("non-empty traces"),
    );
    let llm = llama2_13b();
    let profile_name = "2xA10-24GB";
    let profile = parse_profile(profile_name).expect("known profile");
    let dataset = characterize(
        std::slice::from_ref(&llm),
        std::slice::from_ref(&profile),
        &sampler,
        &CharacterizeConfig::default(),
    );
    let constraints = LatencyConstraints::paper_defaults();
    let u_max = true_u_max(&dataset, llm.name, profile_name, &constraints)
        .expect("profile satisfies the SLA at some load");
    println!(
        "{} on {profile_name}: u_max = {u_max} users/pod under nTTFT<=100ms, ITL<=50ms",
        llm.name
    );

    // 2. Play a diurnal day (base 20 users, peak ~200) against the
    //    autoscaler with different headroom policies.
    let demand = diurnal_demand(20, 180);
    println!(
        "\n{:>9} {:>16} {:>12} {:>11} {:>11} {:>12}",
        "headroom", "SLA attainment", "pod-hours", "scale-ups", "downs", "cost [$/day]"
    );
    for headroom in [1.0f64, 1.25, 1.5, 2.0] {
        let config = AutoscalerConfig { headroom, max_pods: 64, ..AutoscalerConfig::default() };
        let outcome = simulate_autoscaler(&config, u_max, 86_400.0, &demand).expect("valid config");
        println!(
            "{headroom:>9.2} {:>15.1}% {:>12.1} {:>11} {:>11} {:>12.2}",
            outcome.sla_attainment * 100.0,
            outcome.pod_hours,
            outcome.scale_ups,
            outcome.scale_downs,
            outcome.cost(profile.cost_per_hour())
        );
    }
    println!(
        "\nmore headroom buys attainment (covering the startup lag on the\n\
         morning ramp) at a proportional cost premium"
    );
}
