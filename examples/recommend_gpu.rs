//! Online GPU recommendation for an unseen LLM (the cluster user's job).
//!
//! Characterizes every catalog LLM *except* the target (the historical
//! data a cluster would already have), trains LLM-Pilot's weighted +
//! monotone performance model, and recommends the cheapest
//! `(GPU profile, #pods)` satisfying the SLA — then verifies the
//! recommendation against the target's true (simulated) performance.
//!
//! ```text
//! cargo run --release --example recommend_gpu [llm-name] [users] [nttft-ms] [itl-ms]
//! e.g. cargo run --release --example recommend_gpu bigcode/starcoder 200 100 50
//! ```

use llm_pilot::core::baselines::{LlmPilotMethod, Method, MethodInput};
use llm_pilot::core::evaluate::{oracle_recommendation, true_u_max};
use llm_pilot::core::recommend::{LatencyConstraints, RecommendationRequest};
use llm_pilot::core::{characterize, CharacterizeConfig};
use llm_pilot::sim::gpu::paper_profiles;
use llm_pilot::sim::llm::{llm_by_name, llm_catalog};
use llm_pilot::sim::memory::{MemoryConfig, MemoryModel};
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().cloned().unwrap_or_else(|| "bigcode/starcoder".into());
    let users: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let nttft_ms: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100.0);
    let itl_ms: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50.0);

    let Some(unseen) = llm_by_name(&target) else {
        eprintln!("unknown LLM {target:?}; known:");
        for m in llm_catalog() {
            eprintln!("  {}", m.name);
        }
        std::process::exit(2);
    };

    let request = RecommendationRequest {
        total_users: users,
        constraints: LatencyConstraints { nttft_s: nttft_ms / 1e3, itl_s: itl_ms / 1e3 },
        user_grid: (0..8).map(|i| 1u32 << i).collect(),
    };
    println!(
        "request: {} concurrent users, nTTFT <= {nttft_ms} ms/token, ITL <= {itl_ms} ms",
        request.total_users
    );

    // Historical characterization data: every catalog LLM except the target.
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 100_000,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    let sampler = WorkloadSampler::new(
        WorkloadModel::fit(&traces, &Param::core()).expect("non-empty traces"),
    );
    let all = llm_catalog();
    let historical: Vec<_> = all.iter().filter(|m| m.name != unseen.name).cloned().collect();
    println!("characterizing {} historical LLMs...", historical.len());
    let dataset =
        characterize(&historical, &paper_profiles(), &sampler, &CharacterizeConfig::default());

    // Candidate profiles: the ones the unseen LLM physically fits on.
    let candidates: Vec<_> = paper_profiles()
        .into_iter()
        .filter(|p| {
            MemoryModel::new(unseen.clone(), p.clone(), MemoryConfig::default())
                .feasibility()
                .is_feasible()
        })
        .collect();
    println!("{} of 14 profiles can host {}", candidates.len(), unseen.name);

    // LLM-Pilot's recommendation (no measurements of the unseen LLM).
    let method = LlmPilotMethod::untuned();
    let input = MethodInput {
        train_rows: dataset.rows.iter().collect(),
        test_llm: &unseen,
        reference_rows: vec![],
        profiles: &candidates,
        request: &request,
    };
    match method.recommend(&input) {
        Ok(rec) => {
            println!(
                "\nLLM-Pilot recommends: {} pods of {} (predicted {} users/pod) at ${:.2}/h",
                rec.pods, rec.profile, rec.u_max, rec.cost_per_hour
            );
            // Verify against the target's true (simulated) performance.
            let truth = characterize(
                std::slice::from_ref(&unseen),
                &candidates,
                &sampler,
                &CharacterizeConfig::default(),
            );
            let true_cap = true_u_max(&truth, unseen.name, &rec.profile, &request.constraints);
            match true_cap {
                Some(cap) if u64::from(rec.pods) * u64::from(cap) >= u64::from(users) => {
                    println!(
                        "verified: true capacity {} users/pod -> {} pods sustain {} users (SUCCESS)",
                        cap, rec.pods, users
                    );
                }
                Some(cap) => println!(
                    "verification failed: true capacity {cap} users/pod, {} pods fall short",
                    rec.pods
                ),
                None => println!("verification failed: constraints unmet even at 1 user"),
            }
            if let Ok(oracle) = oracle_recommendation(&truth, unseen.name, &candidates, &request) {
                println!(
                    "oracle (perfect knowledge): {} pods of {} at ${:.2}/h",
                    oracle.pods, oracle.profile, oracle.cost_per_hour
                );
            }
        }
        Err(e) => println!("no feasible recommendation: {e}"),
    }
}
