//! Offline fleet characterization (the cluster administrator's job).
//!
//! Runs the full LLM-Pilot characterization pipeline over the paper's
//! 10-LLM × 14-GPU-profile grid — feasibility check, per-cell maximum batch
//! weight tuning, and 1..128-user load tests — and writes the resulting
//! characterization dataset as CSV (the open-sourced artifact of Sec. V-B).
//!
//! ```text
//! cargo run --release --example characterize_fleet [output.csv]
//! ```

use llm_pilot::core::{characterize, CharacterizeConfig};
use llm_pilot::sim::gpu::paper_profiles;
use llm_pilot::sim::llm::llm_catalog;
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn main() {
    let output = std::env::args().nth(1).unwrap_or_else(|| "characterization.csv".into());

    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 100_000,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    let model = WorkloadModel::fit(&traces, &Param::core()).expect("non-empty traces");
    let sampler = WorkloadSampler::new(model);

    let llms = llm_catalog();
    let profiles = paper_profiles();
    println!(
        "characterizing {} LLMs x {} GPU profiles (feasible cells only)...",
        llms.len(),
        profiles.len()
    );
    let started = std::time::Instant::now();
    let dataset = characterize(&llms, &profiles, &sampler, &CharacterizeConfig::default());
    println!(
        "collected {} rows over {} feasible cells in {:.1}s",
        dataset.len(),
        dataset.tuned_weights.len(),
        started.elapsed().as_secs_f64()
    );

    println!("\ntuned maximum batch weights (tokens):");
    for ((llm, profile), weight) in &dataset.tuned_weights {
        println!("{llm:<26} {profile:<14} {weight:>10}");
    }

    std::fs::write(&output, dataset.to_csv()).expect("write CSV");
    println!("\nwrote {output}");
}
